package netmodel

import (
	"sync"
	"time"

	"fabricgossip/internal/wire"
)

// Traffic accounts every transmitted message: per-node byte series in fixed
// time buckets (the paper aggregates at 10 s), plus per-message-type counts
// used to verify analytic claims such as "each block is transmitted in full
// 282 times under infect-and-die".
//
// It is safe for concurrent use so the TCP transport can share it; the
// simulated transport calls it from the single engine goroutine.
type Traffic struct {
	mu     sync.Mutex
	bucket time.Duration
	in     map[wire.NodeID][]uint64
	out    map[wire.NodeID][]uint64
	count  map[wire.MsgType]uint64
	bytes  map[wire.MsgType]uint64
	total  uint64
}

// NewTraffic returns an accountant aggregating at the given bucket width.
func NewTraffic(bucket time.Duration) *Traffic {
	if bucket <= 0 {
		bucket = 10 * time.Second
	}
	return &Traffic{
		bucket: bucket,
		in:     make(map[wire.NodeID][]uint64),
		out:    make(map[wire.NodeID][]uint64),
		count:  make(map[wire.MsgType]uint64),
		bytes:  make(map[wire.MsgType]uint64),
	}
}

// Bucket returns the aggregation width.
func (t *Traffic) Bucket() time.Duration { return t.bucket }

// Record accounts one message of the given type and size sent from -> to
// at virtual/wall time at.
func (t *Traffic) Record(from, to wire.NodeID, mt wire.MsgType, size int, at time.Duration) {
	idx := int(at / t.bucket)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.out[from] = bump(t.out[from], idx, uint64(size))
	t.in[to] = bump(t.in[to], idx, uint64(size))
	t.count[mt]++
	t.bytes[mt] += uint64(size)
	t.total += uint64(size)
}

func bump(s []uint64, idx int, v uint64) []uint64 {
	for len(s) <= idx {
		s = append(s, 0)
	}
	s[idx] += v
	return s
}

// NodeSeries returns the node's traffic in MB/s per bucket (in + out), over
// nBuckets buckets (zero-padded).
func (t *Traffic) NodeSeries(id wire.NodeID, nBuckets int) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, nBuckets)
	secs := t.bucket.Seconds()
	for i := 0; i < nBuckets; i++ {
		var b uint64
		if s := t.in[id]; i < len(s) {
			b += s[i]
		}
		if s := t.out[id]; i < len(s) {
			b += s[i]
		}
		out[i] = float64(b) / 1e6 / secs
	}
	return out
}

// NodeAverage returns the node's average traffic in MB/s over the first
// nBuckets buckets.
func (t *Traffic) NodeAverage(id wire.NodeID, nBuckets int) float64 {
	s := t.NodeSeries(id, nBuckets)
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// NodeTotals returns the total bytes the node received and sent across the
// whole run, for per-organization bandwidth accounting in multi-org
// networks.
func (t *Traffic) NodeTotals(id wire.NodeID) (in, out uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, v := range t.in[id] {
		in += v
	}
	for _, v := range t.out[id] {
		out += v
	}
	return in, out
}

// TotalBytes returns the total bytes transmitted across the network.
func (t *Traffic) TotalBytes() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// CountOf returns how many messages of the given type were transmitted.
func (t *Traffic) CountOf(mt wire.MsgType) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count[mt]
}

// BytesOf returns the bytes transmitted as messages of the given type.
func (t *Traffic) BytesOf(mt wire.MsgType) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes[mt]
}

// Breakdown returns per-type (count, bytes) pairs for reporting.
func (t *Traffic) Breakdown() map[wire.MsgType][2]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[wire.MsgType][2]uint64, len(t.count))
	for mt, c := range t.count {
		out[mt] = [2]uint64{c, t.bytes[mt]}
	}
	return out
}
