package chaincode

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"fabricgossip/internal/ledger"
)

func TestSimulateCounterIncrement(t *testing.T) {
	state := ledger.NewStateDB()
	rw, err := Simulate(Counter{}, state, []string{"incr", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Reads) != 1 || rw.Reads[0].Key != "k" || rw.Reads[0].Version != (ledger.Version{}) {
		t.Fatalf("reads = %+v", rw.Reads)
	}
	if len(rw.Writes) != 1 || rw.Writes[0].Key != "k" {
		t.Fatalf("writes = %+v", rw.Writes)
	}
	v, err := DecodeUint64(rw.Writes[0].Value)
	if err != nil || v != 1 {
		t.Fatalf("written value = %d, %v", v, err)
	}
	// Simulation must not touch the state.
	if state.Len() != 0 {
		t.Fatal("simulation mutated state")
	}
}

func TestSimulateCounterReadsCommittedVersion(t *testing.T) {
	state := ledger.NewStateDB()
	state.ApplyBlockWrites(3, []uint32{2}, []ledger.RWSet{
		{Writes: []ledger.KVWrite{{Key: "k", Value: EncodeUint64(41)}}},
	})
	rw, err := Simulate(Counter{}, state, []string{"incr", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Reads[0].Version != (ledger.Version{BlockNum: 3, TxNum: 2}) {
		t.Fatalf("read version = %v", rw.Reads[0].Version)
	}
	v, _ := DecodeUint64(rw.Writes[0].Value)
	if v != 42 {
		t.Fatalf("incremented to %d, want 42", v)
	}
}

func TestSimulateReadYourWrites(t *testing.T) {
	// A chaincode that increments the same key twice in one invocation
	// must see its own write and record only one read.
	state := ledger.NewStateDB()
	cc := invokeFunc(func(stub Stub) error {
		for i := 0; i < 2; i++ {
			raw, err := stub.GetState("k")
			if err != nil {
				return err
			}
			v, err := DecodeUint64(raw)
			if err != nil {
				return err
			}
			if err := stub.PutState("k", EncodeUint64(v+1)); err != nil {
				return err
			}
		}
		return nil
	})
	rw, err := Simulate(cc, state, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Reads) != 1 {
		t.Fatalf("reads = %+v, want exactly one", rw.Reads)
	}
	if len(rw.Writes) != 1 {
		t.Fatalf("writes = %+v, want coalesced single write", rw.Writes)
	}
	v, _ := DecodeUint64(rw.Writes[0].Value)
	if v != 2 {
		t.Fatalf("final value %d, want 2", v)
	}
}

type invokeFunc func(stub Stub) error

func (invokeFunc) Name() string                      { return "test" }
func (f invokeFunc) Invoke(s Stub, _ []string) error { return f(s) }

func TestCounterGetAndErrors(t *testing.T) {
	state := ledger.NewStateDB()
	if _, err := Simulate(Counter{}, state, []string{"get", "k"}); err != nil {
		t.Fatalf("get: %v", err)
	}
	if _, err := Simulate(Counter{}, state, []string{"incr"}); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("missing key err = %v", err)
	}
	if _, err := Simulate(Counter{}, state, []string{"nope", "k"}); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("bad op err = %v", err)
	}
}

func TestDecodeUint64(t *testing.T) {
	if v, err := DecodeUint64(nil); err != nil || v != 0 {
		t.Fatalf("nil = %d, %v", v, err)
	}
	if v, err := DecodeUint64(EncodeUint64(77)); err != nil || v != 77 {
		t.Fatalf("round trip = %d, %v", v, err)
	}
	if _, err := DecodeUint64([]byte{1, 2}); err == nil {
		t.Fatal("short value accepted")
	}
}

func TestHighThroughputUpdateAndAggregate(t *testing.T) {
	state := ledger.NewStateDB()
	ht := HighThroughput{}
	// Apply three delta rows: +10, +5, -3.
	deltas := []struct {
		delta, sign, row string
	}{{"10", "+", "0"}, {"5", "+", "1"}, {"3", "-", "2"}}
	for i, d := range deltas {
		rw, err := Simulate(ht, state, []string{"update", "acct", d.delta, d.sign, d.row})
		if err != nil {
			t.Fatal(err)
		}
		if len(rw.Reads) != 0 {
			t.Fatalf("update %d produced reads %+v: accumulator rows must be conflict-free", i, rw.Reads)
		}
		state.ApplyBlockWrites(uint64(i), []uint32{0}, []ledger.RWSet{rw})
	}
	got := AggregateAsset(func(key string) []byte {
		vv, _ := state.Get(key)
		return vv.Value
	}, "acct", 3)
	if got != 12 {
		t.Fatalf("aggregate = %d, want 12", got)
	}
	// Read path exercises GetState over all rows.
	rw, err := Simulate(ht, state, []string{"get", "acct", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Reads) != 3 {
		t.Fatalf("get recorded %d reads, want 3", len(rw.Reads))
	}
}

func TestHighThroughputBadArgs(t *testing.T) {
	state := ledger.NewStateDB()
	cases := [][]string{
		{"update", "a"},
		{"update", "a", "x", "+", "0"},
		{"update", "a", "5", "*", "0"},
		{"get", "a"},
		{"get", "a", "x"},
		{"nope", "a"},
		{"update"},
	}
	for _, args := range cases {
		if _, err := Simulate(HighThroughput{}, state, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// Property: counter increments compose — simulating and committing n
// increments yields counter value n, regardless of interleaving with other
// keys.
func TestPropertyCounterComposition(t *testing.T) {
	f := func(raw []uint8) bool {
		state := ledger.NewStateDB()
		counts := map[string]uint64{}
		for i, k := range raw {
			key := string('a' + rune(k%3))
			rw, err := Simulate(Counter{}, state, []string{"incr", key})
			if err != nil {
				return false
			}
			state.ApplyBlockWrites(uint64(i), []uint32{0}, []ledger.RWSet{rw})
			counts[key]++
		}
		for key, want := range counts {
			vv, _ := state.Get(key)
			v, err := DecodeUint64(vv.Value)
			if err != nil || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatePutStateCopiesValue(t *testing.T) {
	state := ledger.NewStateDB()
	val := []byte{1, 2, 3}
	cc := invokeFunc(func(stub Stub) error { return stub.PutState("k", val) })
	rw, err := Simulate(cc, state, nil)
	if err != nil {
		t.Fatal(err)
	}
	val[0] = 99
	if !bytes.Equal(rw.Writes[0].Value, []byte{1, 2, 3}) {
		t.Fatal("write set aliases chaincode buffer")
	}
}
