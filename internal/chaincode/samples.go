package chaincode

import (
	"fmt"
	"strconv"
)

// Counter is the Table II workload (paper §V-D): "a simple chaincode that
// increments one of 100 integer values initialized to 0". Incrementing
// requires reading the current value, so two increments simulated over the
// same base version produce a validation-time conflict; the first committed
// one wins.
type Counter struct{}

// Name implements Chaincode.
func (Counter) Name() string { return "counter" }

// Invoke implements Chaincode. Operations:
//
//	incr <key>        read key, write key+1
//	get  <key>        read key (read-only transaction)
func (Counter) Invoke(stub Stub, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("%w: want op and key", ErrBadArgs)
	}
	op, key := args[0], args[1]
	switch op {
	case "incr":
		raw, err := stub.GetState(key)
		if err != nil {
			return err
		}
		v, err := DecodeUint64(raw)
		if err != nil {
			return err
		}
		return stub.PutState(key, EncodeUint64(v+1))
	case "get":
		_, err := stub.GetState(key)
		return err
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadArgs, op)
	}
}

// HighThroughput models the Fabric high-throughput sample (paper §V-A
// reference [1]): an asset whose value is modified at a high rate. To avoid
// read/write contention on the hot key, each update appends an independent
// delta row under a composite key; reads aggregate all rows. This is the
// classic accumulator pattern the sample demonstrates.
type HighThroughput struct{}

// Name implements Chaincode.
func (HighThroughput) Name() string { return "high-throughput" }

// Invoke implements Chaincode. Operations:
//
//	update <asset> <delta> <op(+|-)> <rowid>   append one delta row
//	get    <asset> <rows>                      fold rows 0..rows-1
func (HighThroughput) Invoke(stub Stub, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("%w: want op and asset", ErrBadArgs)
	}
	switch args[0] {
	case "update":
		if len(args) != 5 {
			return fmt.Errorf("%w: update wants asset, delta, op, rowid", ErrBadArgs)
		}
		asset, deltaStr, sign, row := args[1], args[2], args[3], args[4]
		if sign != "+" && sign != "-" {
			return fmt.Errorf("%w: op must be + or -", ErrBadArgs)
		}
		delta, err := strconv.ParseUint(deltaStr, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: delta %q: %v", ErrBadArgs, deltaStr, err)
		}
		key := compositeKey(asset, row)
		return stub.PutState(key, append([]byte(sign), EncodeUint64(delta)...))
	case "get":
		if len(args) != 3 {
			return fmt.Errorf("%w: get wants asset and row count", ErrBadArgs)
		}
		rows, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("%w: rows %q: %v", ErrBadArgs, args[2], err)
		}
		var total int64
		for i := 0; i < rows; i++ {
			raw, err := stub.GetState(compositeKey(args[1], strconv.Itoa(i)))
			if err != nil {
				return err
			}
			if raw == nil {
				continue
			}
			v, err := DecodeUint64(raw[1:])
			if err != nil {
				return err
			}
			if raw[0] == '-' {
				total -= int64(v)
			} else {
				total += int64(v)
			}
		}
		// The aggregate is returned to the client out of band; state is
		// untouched by a read-only invocation.
		return nil
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadArgs, args[0])
	}
}

// AggregateAsset folds all delta rows of an asset directly against a state
// snapshot — the client-side helper matching HighThroughput "get".
func AggregateAsset(get func(key string) []byte, asset string, rows int) int64 {
	var total int64
	for i := 0; i < rows; i++ {
		raw := get(compositeKey(asset, strconv.Itoa(i)))
		if len(raw) != 9 {
			continue
		}
		v, err := DecodeUint64(raw[1:])
		if err != nil {
			continue
		}
		if raw[0] == '-' {
			total -= int64(v)
		} else {
			total += int64(v)
		}
	}
	return total
}

func compositeKey(asset, row string) string { return asset + "\x00" + row }
