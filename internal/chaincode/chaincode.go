// Package chaincode defines the deterministic smart-contract interface of
// the execute-order-validate pipeline and the simulator that produces
// versioned read/write sets (paper §II-B), together with the two contracts
// the evaluation uses: the high-throughput asset workload (§V-A) and the
// counter-increment workload behind Table II (§V-D).
package chaincode

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fabricgossip/internal/ledger"
)

// Stub is the interface a chaincode uses to access the ledger state during
// simulation. Reads are recorded with the version they observed; writes are
// buffered into the write set.
type Stub interface {
	// GetState returns the current value of key (nil if unset). A key
	// written earlier in the same invocation returns the pending write
	// (read-your-writes) without adding a read-set entry.
	GetState(key string) ([]byte, error)
	// PutState buffers a write.
	PutState(key string, value []byte) error
}

// Chaincode is a deterministic contract: for a given input and read state,
// the produced read/write sets must be identical across executions.
type Chaincode interface {
	// Name returns the chaincode's registered name.
	Name() string
	// Invoke executes one transaction with the given arguments.
	Invoke(stub Stub, args []string) error
}

// Simulate executes cc against the given state database and returns the
// read/write set the invocation produced. The state is never mutated:
// writes become effective only when the transaction later validates and
// commits (paper §II-B).
func Simulate(cc Chaincode, state *ledger.StateDB, args []string) (ledger.RWSet, error) {
	stub := &simStub{state: state, writes: make(map[string]int)}
	if err := cc.Invoke(stub, args); err != nil {
		return ledger.RWSet{}, fmt.Errorf("chaincode %s: %w", cc.Name(), err)
	}
	return stub.rw, nil
}

type simStub struct {
	state  *ledger.StateDB
	rw     ledger.RWSet
	reads  map[string]bool
	writes map[string]int // key -> index into rw.Writes
}

func (s *simStub) GetState(key string) ([]byte, error) {
	if i, ok := s.writes[key]; ok {
		return s.rw.Writes[i].Value, nil // read-your-writes
	}
	vv, _ := s.state.Get(key)
	if s.reads == nil {
		s.reads = make(map[string]bool)
	}
	if !s.reads[key] {
		s.reads[key] = true
		s.rw.Reads = append(s.rw.Reads, ledger.KVRead{Key: key, Version: vv.Version})
	}
	return vv.Value, nil
}

func (s *simStub) PutState(key string, value []byte) error {
	v := make([]byte, len(value))
	copy(v, value)
	if i, ok := s.writes[key]; ok {
		s.rw.Writes[i].Value = v
		return nil
	}
	s.writes[key] = len(s.rw.Writes)
	s.rw.Writes = append(s.rw.Writes, ledger.KVWrite{Key: key, Value: v})
	return nil
}

// --- value helpers shared by the sample contracts ---

// EncodeUint64 encodes v as the canonical 8-byte state value.
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeUint64 decodes a state value written by EncodeUint64. nil (unset
// state) decodes to 0, so counters start from zero implicitly.
func DecodeUint64(b []byte) (uint64, error) {
	if b == nil {
		return 0, nil
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("chaincode: bad uint64 value length %d", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// ErrBadArgs is returned for malformed invocation arguments.
var ErrBadArgs = errors.New("chaincode: bad arguments")
