package sim

import (
	"testing"
	"time"
)

// The pooled AfterMsg path must obey exactly the (time, scheduling order)
// contract of After: interleaved closure and delivery events scheduled for
// the same instant fire in the order they were scheduled.
func TestAfterMsgPreservesSchedulingOrderWithAfter(t *testing.T) {
	e := NewEngine(1)
	var got []string
	h := func(from, to uint64, msg any) { got = append(got, msg.(string)) }
	e.After(time.Second, func() { got = append(got, "a1") })
	e.AfterMsg(time.Second, h, 0, 1, "m1")
	e.After(time.Second, func() { got = append(got, "a2") })
	e.AfterMsg(time.Second, h, 0, 1, "m2")
	e.Run()
	want := []string{"a1", "m1", "a2", "m2"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestAfterMsgDeliversTypedPayload(t *testing.T) {
	e := NewEngine(1)
	type payload struct{ n int }
	var gotFrom, gotTo uint64
	var gotN int
	e.AfterMsg(time.Millisecond, func(from, to uint64, msg any) {
		gotFrom, gotTo = from, to
		gotN = msg.(*payload).n
	}, 7, 9, &payload{n: 42})
	e.Run()
	if gotFrom != 7 || gotTo != 9 || gotN != 42 {
		t.Fatalf("delivered (%d, %d, %d), want (7, 9, 42)", gotFrom, gotTo, gotN)
	}
}

func TestAfterMsgNegativeDelayClampedBehindCurrentInstant(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.After(time.Second, func() {
		e.AfterMsg(-time.Minute, func(_, _ uint64, msg any) {
			got = append(got, msg.(string))
		}, 0, 0, "late")
		e.After(0, func() { got = append(got, "same-instant") })
	})
	e.Run()
	if len(got) != 2 || got[0] != "late" || got[1] != "same-instant" {
		t.Fatalf("fired %v, want [late same-instant]", got)
	}
	if e.Now() != time.Second {
		t.Fatalf("clock at %v, want 1s", e.Now())
	}
}

func TestAfterMsgNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil handler")
		}
	}()
	NewEngine(1).AfterMsg(time.Second, nil, 0, 0, "x")
}

// The steady-state delivery loop — schedule one pooled event, dispatch it —
// must not touch the heap: the event struct cycles through the free list.
func TestAfterMsgSteadyStateAllocationFree(t *testing.T) {
	e := NewEngine(1)
	h := func(from, to uint64, msg any) {}
	var msg any = &struct{}{}
	// Prime the free list and the queue's capacity.
	for i := 0; i < 64; i++ {
		e.AfterMsg(0, h, 0, 1, msg)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterMsg(time.Microsecond, h, 0, 1, msg)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state AfterMsg+Step allocates %.1f objects/op, want 0", allocs)
	}
}

// Handlers that schedule from inside the dispatch (a forwarding hop) must
// be able to reuse the event that is currently firing.
func TestAfterMsgHandlerMayRescheduleRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	hops := 0
	var h DeliveryHandler
	h = func(from, to uint64, msg any) {
		if hops++; hops < 5 {
			e.AfterMsg(time.Millisecond, h, from, to, msg)
		}
	}
	e.AfterMsg(time.Millisecond, h, 0, 1, "fwd")
	e.Run()
	if hops != 5 {
		t.Fatalf("forwarded %d hops, want 5", hops)
	}
	if len(e.free) != 1 {
		t.Fatalf("free list holds %d events, want 1 (the chain reused one struct)", len(e.free))
	}
}

// BenchmarkEngineAfterMsg measures the pooled dispatch cycle: push one
// delivery event, pop and dispatch it. This is the per-message floor of
// every simulated experiment; it must report 0 allocs/op.
func BenchmarkEngineAfterMsg(b *testing.B) {
	e := NewEngine(1)
	h := func(from, to uint64, msg any) {}
	var msg any = &struct{}{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AfterMsg(time.Microsecond, h, 0, 1, msg)
		e.Step()
	}
}

// BenchmarkEngineAfter is the closure-path counterpart, kept for the
// trajectory: periodic timers still use it (one event per arm, reused by
// Every), so its cost matters for timer-heavy scenarios.
func BenchmarkEngineAfter(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, fn)
		e.Step()
	}
}
