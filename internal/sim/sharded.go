package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedEngine is a conservative parallel discrete-event coordinator over a
// set of independent Engines (shards) plus one control engine. It exploits
// the classic Chandy–Misra–Bryant observation without null messages: when
// every cross-shard interaction carries at least `lookahead` of simulated
// latency, shards can execute a whole window [t, t+lookahead] without ever
// observing each other, because no message sent inside the window can be due
// before the window ends.
//
// The coordinator advances simulated time in lock-step windows:
//
//  1. Barrier at time t: the control engine runs its due events (scenario
//     fault actions, block injections, periodic samplers — everything the
//     harness schedules on Control()), registered barrier hooks run, and
//     the per-pair cross-shard inboxes are drained into the destination
//     shards' queues in a fixed order (destination ascending, then source
//     ascending, then FIFO).
//  2. Window: every shard runs RunUntil(h), h = min(t+lookahead, next
//     control event, end) — serially or on one goroutine per shard. Shards
//     share no mutable state during the window; cross-shard deliveries are
//     appended to the sender's single-writer inbox row and become visible
//     only at the next barrier.
//
// Because inbox drain order, window edges and per-shard event order are all
// functions of (seed, scenario) alone, a sharded run is bit-for-bit
// deterministic regardless of GOMAXPROCS or whether the window executes
// serially or in parallel.
type ShardedEngine struct {
	shards    []*Engine
	control   *Engine
	lookahead time.Duration
	parallel  bool

	// inbox[src][dst] buffers cross-shard deliveries produced during a
	// window. Each row [src] is appended to only by shard src's goroutine
	// (or the coordinator during a barrier), so no locking is needed; the
	// coordinator drains every row between windows, after the shard
	// goroutines have joined.
	inbox [][][]crossEvent

	// barriers run at every window edge, after control events and before
	// the inbox drain, in registration order.
	barriers []func()

	// adaptive elides the barrier ceremony (control events, hooks, inbox
	// drain) at interior window edges that provably have nothing to do:
	// every inbox empty, no control event due, and no RequestBarrier call
	// outstanding. Windows still advance in lookahead-wide steps and the
	// horizon still moves edge by edge, so the SendCross safety check is
	// unchanged; elision only removes ceremony that would have been a
	// no-op, which is why adaptive and fixed runs are bit-identical.
	adaptive   bool
	barrierReq atomic.Bool

	fullBarriers   uint64
	elidedBarriers uint64

	// violation, when set, runs on the offending shard's goroutine just
	// before a lookahead-violation panic, so a flight recorder can dump
	// that shard's recent events while the rest of the window is still
	// running. The hook must touch only state owned by shard src.
	violation func(src, dst int, msg string)

	now     time.Duration
	horizon time.Duration
}

// crossEvent is one buffered cross-shard delivery.
type crossEvent struct {
	at       time.Duration
	h        DeliveryHandler
	from, to uint64
	msg      any
}

// NewShardedEngine returns a coordinator over nShards shard engines and one
// control engine. The control engine is seeded with the root seed — so
// control-plane random streams match a sequential engine built from the same
// seed — and shard i derives its streams from StreamSeed(seed, "shard<i>"),
// giving every shard an independent stream universe. lookahead must be a
// lower bound on the simulated latency of every cross-shard message; it must
// be positive (a zero lookahead admits no parallel window — callers fall
// back to the sequential engine instead).
func NewShardedEngine(seed int64, nShards int, lookahead time.Duration) *ShardedEngine {
	if nShards <= 0 {
		panic(fmt.Sprintf("sim: NewShardedEngine with %d shards", nShards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewShardedEngine with non-positive lookahead %v", lookahead))
	}
	se := &ShardedEngine{
		control:   NewEngine(seed),
		lookahead: lookahead,
		parallel:  true,
	}
	se.shards = make([]*Engine, nShards)
	for i := range se.shards {
		se.shards[i] = NewEngine(StreamSeed(seed, fmt.Sprintf("shard%d", i)))
	}
	se.inbox = make([][][]crossEvent, nShards)
	for i := range se.inbox {
		se.inbox[i] = make([][]crossEvent, nShards)
	}
	return se
}

// NumShards returns the number of shard engines.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns shard i's engine. Outside a window it may be used freely;
// during a window only shard i's goroutine may touch it.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Control returns the control engine. Events scheduled on it fire only at
// window barriers, which is exactly what scenario actions and harness
// samplers need: they observe every shard quiescent at a common instant.
func (se *ShardedEngine) Control() *Engine { return se.control }

// Lookahead returns the conservative window width.
func (se *ShardedEngine) Lookahead() time.Duration { return se.lookahead }

// Now returns the time of the most recent barrier.
func (se *ShardedEngine) Now() time.Duration { return se.now }

// SetParallel selects whether windows run on one goroutine per shard (the
// default) or serially on the caller's goroutine. Both modes produce
// identical results; the serial mode exists for the determinism property
// test and for debugging.
func (se *ShardedEngine) SetParallel(p bool) { se.parallel = p }

// SetAdaptive selects whether idle window edges elide their barrier
// ceremony. Both modes produce byte-identical simulations — elision is
// restricted to edges where the ceremony would have executed nothing — so
// the fixed mode exists for the equivalence property test and debugging.
func (se *ShardedEngine) SetAdaptive(a bool) { se.adaptive = a }

// Adaptive reports whether idle-edge barrier elision is enabled.
func (se *ShardedEngine) Adaptive() bool { return se.adaptive }

// RequestBarrier guarantees the next window edge runs the full barrier
// ceremony. Barrier hooks whose work is fed mid-window (a pump flush
// request, a block record queued for fan-out) must call this when they
// enqueue work, otherwise an adaptive coordinator may elide the edge that
// would have drained it. Safe from any shard goroutine.
func (se *ShardedEngine) RequestBarrier() { se.barrierReq.Store(true) }

// BarrierStats returns how many window edges ran the full barrier ceremony
// and how many were elided as provably idle.
func (se *ShardedEngine) BarrierStats() (full, elided uint64) {
	return se.fullBarriers, se.elidedBarriers
}

// SetViolationHook installs fn to run just before a lookahead-violation
// panic, on the goroutine of the offending source shard. The hook may only
// touch state owned by that shard (other shards are still mid-window); the
// intended use is a flight-recorder dump of the shard's recent events.
func (se *ShardedEngine) SetViolationHook(fn func(src, dst int, msg string)) {
	se.violation = fn
}

// OnBarrier registers fn to run at every window edge, after the control
// engine's due events fire and before cross-shard inboxes drain. Hooks run
// with every shard quiescent and all shard clocks equal to Now().
func (se *ShardedEngine) OnBarrier(fn func()) {
	se.barriers = append(se.barriers, fn)
}

// SendCross buffers a delivery from shard src to shard dst, due at absolute
// time at. It panics if the delivery would land inside the current window —
// that means some cross-shard link is faster than the declared lookahead,
// and silently delivering it late would reorder the simulation
// nondeterministically. Callers (the transport) must guarantee cross-shard
// latency >= Lookahead().
func (se *ShardedEngine) SendCross(src, dst int, at time.Duration, h DeliveryHandler, from, to uint64, msg any) {
	if at < se.horizon {
		msg := fmt.Sprintf(
			"sim: cross-shard delivery at %v violates window horizon %v (shard %d -> %d, lookahead %v): cross-shard latency must be >= lookahead",
			at, se.horizon, src, dst, se.lookahead)
		if se.violation != nil {
			se.violation(src, dst, msg)
		}
		panic(msg)
	}
	se.inbox[src][dst] = append(se.inbox[src][dst], crossEvent{at: at, h: h, from: from, to: to, msg: msg})
}

// Executed returns the total events run across the control engine and every
// shard.
func (se *ShardedEngine) Executed() uint64 {
	n := se.control.Executed()
	for _, s := range se.shards {
		n += s.Executed()
	}
	return n
}

// Pending returns the total events waiting across all engines and inboxes.
func (se *ShardedEngine) Pending() int {
	n := se.control.Pending()
	for _, s := range se.shards {
		n += s.Pending()
	}
	for _, row := range se.inbox {
		for _, box := range row {
			n += len(box)
		}
	}
	return n
}

// PeakPending returns the largest queue high-water mark across the control
// engine and every shard.
func (se *ShardedEngine) PeakPending() int {
	peak := se.control.PeakPending()
	for _, s := range se.shards {
		if p := s.PeakPending(); p > peak {
			peak = p
		}
	}
	return peak
}

// RunUntil advances the simulation to time end in conservative windows.
func (se *ShardedEngine) RunUntil(end time.Duration) {
	first := true
	for {
		now := se.now
		// Barrier phase. The horizon is pinned to the barrier instant so
		// cross-shard sends issued by control events or barrier hooks (which
		// carry at >= now + lookahead) pass the safety check.
		se.horizon = now
		// An adaptive coordinator elides the ceremony at interior edges
		// with nothing to do: no buffered cross-shard delivery, no control
		// event due, no outstanding RequestBarrier. The first edge of every
		// RunUntil call and the closing edge always run in full — callers
		// mutate state between RunUntil calls, and the closing ceremony
		// leaves the control clock pinned to end.
		req := se.barrierReq.Swap(false)
		if !se.adaptive || first || req || now >= end || se.inboxesPending() || se.controlDue(now) {
			se.fullBarriers++
			se.control.RunUntil(now)
			for _, fn := range se.barriers {
				fn()
			}
			// Drain after the hooks: deliveries they produce (e.g. a pump
			// flushing at the barrier) are picked up immediately rather
			// than waiting a window.
			se.drainInboxes()
		} else {
			se.elidedBarriers++
		}
		first = false
		if now >= end {
			// Closing window: an idle hop can land exactly on end with shard
			// events due at that instant (and RunUntil's contract is
			// "events at <= end have executed"). Usually a no-op.
			se.horizon = end
			se.runWindow(end)
			return
		}

		// Clip the window to the next control event: control events must
		// observe all shard activity up to their timestamp, so a window
		// never crosses one. A control event scheduled *at* now from a
		// barrier hook fires at the next barrier (the t > now guard keeps
		// the window from collapsing to zero width).
		h := now + se.lookahead
		if t, ok := se.control.NextEventAt(); ok && t > now && t < h {
			h = t
		}
		if h > end {
			h = end
		}

		// Idle hop: when every shard's next obligation lies beyond the
		// window, jump straight to the earliest one instead of running
		// empty windows. Clocks advance without executing; skipped barriers
		// had nothing to do by construction (no control event, no shard
		// event, empty inboxes).
		minNext := time.Duration(1<<63 - 1)
		for _, s := range se.shards {
			if t, ok := s.NextEventAt(); ok && t < minNext {
				minNext = t
			}
		}
		if minNext > h {
			jump := minNext
			if t, ok := se.control.NextEventAt(); ok && t > now && t < jump {
				jump = t
			}
			if jump > end {
				jump = end
			}
			for _, s := range se.shards {
				s.advanceTo(jump)
			}
			se.now = jump
			continue
		}

		// Window phase.
		se.horizon = h
		se.runWindow(h)
		se.now = h
	}
}

// runWindow executes one window on every shard.
func (se *ShardedEngine) runWindow(h time.Duration) {
	if !se.parallel {
		for _, s := range se.shards {
			s.RunUntil(h)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(se.shards))
	for _, s := range se.shards {
		go func(s *Engine) {
			defer wg.Done()
			s.RunUntil(h)
		}(s)
	}
	wg.Wait()
}

// inboxesPending reports whether any cross-shard inbox holds a buffered
// delivery. Called only at window edges, after shard goroutines have
// joined, so the scan is race-free.
func (se *ShardedEngine) inboxesPending() bool {
	for _, row := range se.inbox {
		for _, box := range row {
			if len(box) > 0 {
				return true
			}
		}
	}
	return false
}

// controlDue reports whether the control engine has an event due at or
// before the given barrier instant.
func (se *ShardedEngine) controlDue(now time.Duration) bool {
	t, ok := se.control.NextEventAt()
	return ok && t <= now
}

// drainInboxes moves buffered cross-shard deliveries into their destination
// shards' queues. The order — destination ascending, source ascending, FIFO
// within a pair — fixes the (time, seq) tie-break of simultaneous arrivals
// and is therefore part of the determinism contract.
func (se *ShardedEngine) drainInboxes() {
	for dst := range se.shards {
		eng := se.shards[dst]
		for src := range se.inbox {
			box := se.inbox[src][dst]
			if len(box) == 0 {
				continue
			}
			for i := range box {
				ev := &box[i]
				eng.AtMsg(ev.at, ev.h, ev.from, ev.to, ev.msg)
				ev.h = nil
				ev.msg = nil
			}
			se.inbox[src][dst] = box[:0]
		}
	}
}
