package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(3*time.Second, func() { got = append(got, 3) })
	e.After(1*time.Second, func() { got = append(got, 1) })
	e.After(2*time.Second, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	e.After(time.Second, func() {
		e.After(time.Second, func() {
			fired = append(fired, e.Now())
		})
		fired = append(fired, e.Now())
	})
	e.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("nested events fired at %v, want [1s 2s]", fired)
	}
}

func TestEngineZeroAndNegativeDelaysClampToNow(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.After(time.Second, func() {
		e.After(-5*time.Second, func() {
			if e.Now() != time.Second {
				t.Errorf("negative delay fired at %v, want 1s", e.Now())
			}
			ran++
		})
		e.After(0, func() { ran++ })
	})
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerStopAfterFireReturnsFalse(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(time.Second, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestRunUntilAdvancesClockAndStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	n := e.RunUntil(3 * time.Second)
	if n != 2 {
		t.Fatalf("RunUntil executed %d events, want 2", n)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
	n = e.Run()
	if n != 1 || e.Now() != 5*time.Second {
		t.Fatalf("after Run: n=%d now=%v, want 1 and 5s", n, e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(10 * time.Second)
	if e.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s", e.Now())
	}
	e.RunFor(5 * time.Second)
	if e.Now() != 15*time.Second {
		t.Fatalf("Now() = %v, want 15s", e.Now())
	}
}

func TestEveryFiresPeriodicallyUntilStopped(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	tm := e.Every(time.Second, func() { fired = append(fired, e.Now()) })
	e.RunUntil(3500 * time.Millisecond)
	tm.Stop()
	e.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("periodic fired %d times (%v), want 3", len(fired), fired)
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if fired[i] != want {
			t.Fatalf("firing %d at %v, want %v", i, fired[i], want)
		}
	}
}

func TestEveryStopFromWithinCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tm Timer
	tm = e.Every(time.Second, func() {
		count++
		if count == 2 {
			tm.Stop()
		}
	})
	e.RunUntil(10 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.After(time.Duration(i)*time.Second, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	// Remaining events still runnable.
	e.Run()
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestEngineDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		r := e.Rand("test")
		var vals []int64
		e.Every(time.Second, func() { vals = append(vals, r.Int63()) })
		e.RunUntil(20 * time.Second)
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRandStreamsAreIndependent(t *testing.T) {
	e := NewEngine(7)
	a := e.Rand("a").Int63()
	b := e.Rand("b").Int63()
	if a == b {
		t.Fatal("different streams produced identical first values")
	}
	if e.Rand("a") != e.Rand("a") {
		t.Fatal("same stream name should return the same stream")
	}
}

func TestSampleWithout(t *testing.T) {
	r := NewRand(3)
	skip := map[int]bool{2: true, 5: true}
	for trial := 0; trial < 200; trial++ {
		got := r.SampleWithout(10, 4, skip)
		if len(got) != 4 {
			t.Fatalf("sample size %d, want 4", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 10 {
				t.Fatalf("sample value %d out of range", v)
			}
			if skip[v] {
				t.Fatalf("sampled skipped value %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d in %v", v, got)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutPanicsWhenTooFewCandidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).SampleWithout(3, 3, map[int]bool{0: true})
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(9)
		var fired []time.Duration
		var maxD time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Millisecond
			if d > maxD {
				maxD = d
			}
			e.After(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Active cancellation: Stop removes the event from the queue immediately,
// so heavy timer churn cannot bloat the heap.
func TestStopRemovesEventFromQueueImmediately(t *testing.T) {
	e := NewEngine(1)
	timers := make([]Timer, 0, 100)
	for i := 0; i < 100; i++ {
		timers = append(timers, e.After(time.Duration(i+1)*time.Second, func() {}))
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", e.Pending())
	}
	for i, tm := range timers {
		if i%2 == 0 {
			tm.Stop()
		}
	}
	if e.Pending() != 50 {
		t.Fatalf("Pending after cancelling half = %d, want 50", e.Pending())
	}
	if n := e.Run(); n != 50 {
		t.Fatalf("Run executed %d events, want 50", n)
	}
}

// Property: random interleavings of scheduling and cancellation preserve
// heap order and never fire a cancelled event.
func TestPropertyRandomCancellationKeepsHeapOrdered(t *testing.T) {
	f := func(ops []uint16) bool {
		e := NewEngine(11)
		var live []Timer
		fired := []time.Duration{}
		expect := 0
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				idx := int(op/3) % len(live)
				if live[idx].Stop() {
					expect--
				}
				live = append(live[:idx], live[idx+1:]...)
				continue
			}
			d := time.Duration(op%1000) * time.Millisecond
			live = append(live, e.After(d, func() { fired = append(fired, e.Now()) }))
			expect++
		}
		e.Run()
		if len(fired) != expect {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Every must not allocate once in steady state: the periodic timer reuses a
// single event struct across firings.
func TestEverySteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	e.Every(time.Second, func() { ticks++ })
	e.RunFor(10 * time.Second) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		e.RunFor(time.Second) // exactly one tick per run
	})
	if ticks == 0 {
		t.Fatal("periodic never fired")
	}
	if allocs > 0 {
		t.Fatalf("steady-state periodic tick allocates %.1f objects/op, want 0", allocs)
	}
}

func TestEveryStopBetweenFiringsRemovesQueuedEvent(t *testing.T) {
	e := NewEngine(1)
	tm := e.Every(time.Second, func() {})
	e.RunUntil(1500 * time.Millisecond)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the re-armed tick)", e.Pending())
	}
	if !tm.Stop() {
		t.Fatal("Stop reported false on a live periodic timer")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after Stop = %d, want 0", e.Pending())
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
}

func TestExecutedCountsEvents(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i)*time.Second, func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}

func TestAfterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	NewEngine(1).After(time.Second, nil)
}

func TestEveryNonPositiveIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive interval")
		}
	}()
	NewEngine(1).Every(0, func() {})
}
