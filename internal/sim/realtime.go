package sim

import (
	"sync"
	"time"
)

// RealScheduler implements Scheduler on top of the wall clock. Callbacks run
// on their own goroutines (via time.AfterFunc), so protocol state they touch
// must be guarded by the caller. It is safe for concurrent use.
type RealScheduler struct {
	start time.Time

	mu     sync.Mutex
	closed bool
	timers map[*realTimer]struct{}
}

// NewRealScheduler returns a scheduler whose Now() is measured from the
// moment of this call.
func NewRealScheduler() *RealScheduler {
	return &RealScheduler{
		start:  time.Now(),
		timers: make(map[*realTimer]struct{}),
	}
}

// Now returns the elapsed wall time since the scheduler was created.
func (s *RealScheduler) Now() time.Duration { return time.Since(s.start) }

// After schedules fn on the wall clock. After Close, it returns an inert
// timer without scheduling anything.
func (s *RealScheduler) After(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: After called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	rt := &realTimer{sched: s}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		rt.fired = true
		return rt
	}
	s.timers[rt] = struct{}{}
	s.mu.Unlock()

	rt.t = time.AfterFunc(d, func() {
		s.mu.Lock()
		if s.closed || rt.fired {
			s.mu.Unlock()
			return
		}
		rt.fired = true
		delete(s.timers, rt)
		s.mu.Unlock()
		fn()
	})
	return rt
}

// Close cancels all outstanding timers. Subsequent After calls are no-ops.
func (s *RealScheduler) Close() {
	s.mu.Lock()
	s.closed = true
	timers := make([]*realTimer, 0, len(s.timers))
	for rt := range s.timers {
		timers = append(timers, rt)
	}
	s.timers = make(map[*realTimer]struct{})
	s.mu.Unlock()
	for _, rt := range timers {
		if rt.t != nil {
			rt.t.Stop()
		}
	}
}

type realTimer struct {
	sched *RealScheduler
	t     *time.Timer
	fired bool
}

func (rt *realTimer) Stop() bool {
	rt.sched.mu.Lock()
	if rt.fired {
		rt.sched.mu.Unlock()
		return false
	}
	rt.fired = true
	delete(rt.sched.timers, rt)
	rt.sched.mu.Unlock()
	if rt.t != nil {
		rt.t.Stop()
	}
	return true
}
