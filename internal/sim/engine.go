// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an ordered queue of events.
// Events scheduled for the same instant fire in scheduling order, which —
// together with seeded random streams (see Rand) — makes every run exactly
// reproducible from its seed.
//
// Protocol code is written against the Scheduler interface so that the same
// logic runs unchanged under virtual time (Engine) and real time
// (RealScheduler).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler abstracts time for protocol code: the discrete-event Engine and
// the wall-clock RealScheduler both implement it.
type Scheduler interface {
	// Now returns the elapsed time since the start of the run.
	Now() time.Duration
	// After schedules fn to run once, d from now. A non-positive d means
	// "as soon as possible" (still asynchronously, never inline).
	After(d time.Duration, fn func()) Timer
}

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the callback if it has not fired yet and reports
	// whether it was cancelled before firing.
	Stop() bool
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all events run sequentially on the goroutine that calls
// Run, RunFor or RunUntil, which is what gives simulated protocols their
// determinism.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	streams map[string]*Rand
	seed    int64
	stopped bool
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		streams: make(map[string]*Rand),
		seed:    seed,
	}
}

// Seed returns the root seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events waiting in the queue, including
// cancelled-but-not-yet-popped entries.
func (e *Engine) Pending() int { return len(e.queue) }

// After schedules fn to run at Now()+d. Negative delays are clamped to zero,
// so the event fires after all events already scheduled for the current
// instant.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: After called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	ev := &event{at: e.now + d, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// At schedules fn at an absolute virtual time. Times in the past are clamped
// to the current instant.
func (e *Engine) At(t time.Duration, fn func()) Timer {
	return e.After(t-e.now, fn)
}

// Every schedules fn at now+interval, now+2*interval, ... until the returned
// timer is stopped. The first firing is one full interval from now.
func (e *Engine) Every(interval time.Duration, fn func()) Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive interval %v", interval))
	}
	p := &periodic{}
	var arm func()
	arm = func() {
		p.mu = e.After(interval, func() {
			if p.stopped {
				return
			}
			fn()
			if !p.stopped {
				arm()
			}
		})
	}
	arm()
	return p
}

// Step executes the single next event and reports whether one was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// the number of events executed.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (even if the queue drained earlier). It returns the number of events
// executed.
func (e *Engine) RunUntil(t time.Duration) int {
	e.stopped = false
	n := 0
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next.at > t {
			break
		}
		if e.Step() {
			n++
		}
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// RunFor is shorthand for RunUntil(Now()+d).
func (e *Engine) RunFor(d time.Duration) int { return e.RunUntil(e.now + d) }

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Scheduled events remain queued.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() (*event, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0], true
	}
	return nil, false
}

// event implements Timer.
type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int
	cancelled bool
	fired     bool
}

func (ev *event) Stop() bool {
	if ev.fired || ev.cancelled {
		return false
	}
	ev.cancelled = true
	return true
}

// periodic implements Timer for Every.
type periodic struct {
	mu      Timer
	stopped bool
}

func (p *periodic) Stop() bool {
	if p.stopped {
		return false
	}
	p.stopped = true
	if p.mu != nil {
		p.mu.Stop()
	}
	return true
}

// eventQueue is a min-heap ordered by (time, insertion sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
