// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an ordered queue of events.
// Events scheduled for the same instant fire in scheduling order, which —
// together with seeded random streams (see Rand) — makes every run exactly
// reproducible from its seed.
//
// Protocol code is written against the Scheduler interface so that the same
// logic runs unchanged under virtual time (Engine) and real time
// (RealScheduler).
package sim

import (
	"fmt"
	"time"
)

// Scheduler abstracts time for protocol code: the discrete-event Engine and
// the wall-clock RealScheduler both implement it.
type Scheduler interface {
	// Now returns the elapsed time since the start of the run.
	Now() time.Duration
	// After schedules fn to run once, d from now. A non-positive d means
	// "as soon as possible" (still asynchronously, never inline).
	After(d time.Duration, fn func()) Timer
}

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the callback if it has not fired yet and reports
	// whether it was cancelled before firing.
	Stop() bool
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all events run sequentially on the goroutine that calls
// Run, RunFor or RunUntil, which is what gives simulated protocols their
// determinism.
//
// Cancellation is active: Stop removes the event from the queue immediately
// (O(log n)), so long runs with heavy timer churn — thousand-peer fault
// scenarios cancel and re-arm millions of timers — never accumulate dead
// entries in the heap.
type Engine struct {
	now      time.Duration
	seq      uint64
	queue    eventQueue
	streams  map[string]*Rand
	seed     int64
	stopped  bool
	executed uint64
	// free recycles fired delivery events (AfterMsg) so the steady-state
	// per-message path never allocates: a simulation delivering millions of
	// messages reuses a working set of event structs the size of its peak
	// in-flight count.
	free []*event
	// peakPending is the high-water mark of the event queue, a capacity
	// diagnostic for drain spikes (scenario reports surface it outside the
	// fingerprint).
	peakPending int
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		streams: make(map[string]*Rand),
		seed:    seed,
	}
}

// Seed returns the root seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events waiting in the queue. Cancelled
// events are removed eagerly and never counted.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the total number of events run since creation.
func (e *Engine) Executed() uint64 { return e.executed }

// PeakPending returns the queue's high-water mark: the largest number of
// events that were ever simultaneously pending.
func (e *Engine) PeakPending() int { return e.peakPending }

// notePeak updates the queue high-water mark after a push.
func (e *Engine) notePeak() {
	if n := len(e.queue); n > e.peakPending {
		e.peakPending = n
	}
}

// NextEventAt returns the timestamp of the earliest pending event, or false
// when the queue is empty. The sharded coordinator uses it to clip windows
// to the next barrier-hosted event and to skip empty windows entirely.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// advanceTo moves the clock forward to t without executing anything (the
// sharded coordinator's idle hop). Events already queued at or before t are
// untouched and fire — at their recorded timestamps — in the next window.
func (e *Engine) advanceTo(t time.Duration) {
	if e.now < t {
		e.now = t
	}
}

// After schedules fn to run at Now()+d. Negative delays are clamped to zero,
// so the event fires after all events already scheduled for the current
// instant.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: After called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	ev := &event{e: e, at: e.now + d, seq: e.seq, fn: fn}
	e.seq++
	e.queue.push(ev)
	e.notePeak()
	return ev
}

// At schedules fn at an absolute virtual time. Times in the past are clamped
// to the current instant.
func (e *Engine) At(t time.Duration, fn func()) Timer {
	return e.After(t-e.now, fn)
}

// DeliveryHandler consumes a pooled delivery event: the payload a transport
// stored with AfterMsg comes back as typed arguments instead of a captured
// closure environment.
type DeliveryHandler func(from, to uint64, msg any)

// AfterMsg schedules h(from, to, msg) at Now()+d on the pooled delivery
// path. It is the allocation-free counterpart of After for the dominant
// event class of a network simulation — message deliveries — which are
// fire-and-forget: no Timer is returned because deliveries are never
// cancelled (faults are checked at fire time by the handler). The (time,
// insertion sequence) ordering contract is exactly After's: an AfterMsg and
// an After scheduled for the same instant fire in scheduling order.
//
// The event struct comes from a free list and returns to it after firing,
// and the arguments live in typed fields, so steady-state delivery performs
// zero heap allocations. Storing msg in the any field is allocation-free
// when msg is already an interface or pointer (interface-to-interface
// conversion copies the two words); callers should not pass bare scalars.
func (e *Engine) AfterMsg(d time.Duration, h DeliveryHandler, from, to uint64, msg any) {
	if h == nil {
		panic("sim: AfterMsg called with nil handler")
	}
	if d < 0 {
		d = 0
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{e: e}
	}
	ev.at = e.now + d
	ev.seq = e.seq
	e.seq++
	ev.deliver = h
	ev.from = from
	ev.to = to
	ev.msg = msg
	e.queue.push(ev)
	e.notePeak()
}

// AtMsg schedules a pooled delivery at an absolute virtual time, clamping
// past times to the current instant. It is At's counterpart on the AfterMsg
// path; the sharded coordinator uses it to requeue cross-shard deliveries at
// their original timestamps.
func (e *Engine) AtMsg(t time.Duration, h DeliveryHandler, from, to uint64, msg any) {
	e.AfterMsg(t-e.now, h, from, to, msg)
}

// Every schedules fn at now+interval, now+2*interval, ... until the returned
// timer is stopped. The first firing is one full interval from now.
//
// The periodic timer owns a single event struct and re-queues it after each
// firing, so steady-state ticking allocates nothing — the dominant event
// source of a large simulation (per-peer heartbeat/state-info/recovery
// timers) stays off the garbage collector entirely.
func (e *Engine) Every(interval time.Duration, fn func()) Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive interval %v", interval))
	}
	p := &periodic{e: e, interval: interval, fn: fn}
	p.tickFn = p.tick // bound once: rebinding per tick would allocate
	p.ev = &event{e: e, fn: p.tickFn}
	p.rearm()
	return p
}

// Step executes the single next event and reports whether one was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.popMin()
	if ev.at > e.now {
		e.now = ev.at
	}
	e.executed++
	if h := ev.deliver; h != nil {
		// Pooled delivery event: copy the payload out, recycle the struct
		// before invoking the handler (so the handler's own sends can reuse
		// it), then dispatch.
		from, to, msg := ev.from, ev.to, ev.msg
		ev.deliver = nil
		ev.msg = nil
		e.free = append(e.free, ev)
		h(from, to, msg)
		return true
	}
	fn := ev.fn
	ev.fn = nil // release the closure; also marks the event as fired
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the number of events executed.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (even if the queue drained earlier). It returns the number of events
// executed.
func (e *Engine) RunUntil(t time.Duration) int {
	e.stopped = false
	n := 0
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
		n++
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// RunFor is shorthand for RunUntil(Now()+d).
func (e *Engine) RunFor(d time.Duration) int { return e.RunUntil(e.now + d) }

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Scheduled events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// event implements Timer. index is the event's position in the owning
// engine's heap, or -1 once it has fired or been cancelled.
//
// An event is either a closure event (fn set, scheduled by After/Every) or
// a pooled delivery event (deliver set, scheduled by AfterMsg, recycled via
// the engine's free list after firing). Delivery events never escape as
// Timers, so Stop cannot observe one.
type event struct {
	e     *Engine
	at    time.Duration
	seq   uint64
	fn    func()
	index int

	// Typed payload of the pooled delivery path.
	deliver  DeliveryHandler
	from, to uint64
	msg      any
}

func (ev *event) Stop() bool {
	if ev.index < 0 || ev.fn == nil {
		return false // already fired or cancelled
	}
	ev.e.queue.remove(ev.index)
	ev.fn = nil
	return true
}

// periodic implements Timer for Every, reusing one event across firings.
type periodic struct {
	e        *Engine
	interval time.Duration
	fn       func()
	tickFn   func()
	ev       *event
	stopped  bool
}

func (p *periodic) rearm() {
	ev := p.ev
	ev.at = p.e.now + p.interval
	ev.seq = p.e.seq
	p.e.seq++
	ev.fn = p.tickFn
	p.e.queue.push(ev)
	p.e.notePeak()
}

func (p *periodic) tick() {
	if p.stopped {
		return
	}
	p.fn()
	if !p.stopped {
		p.rearm()
	}
}

func (p *periodic) Stop() bool {
	if p.stopped {
		return false
	}
	p.stopped = true
	if p.ev.index >= 0 {
		p.e.queue.remove(p.ev.index)
		p.ev.fn = nil
	}
	return true
}

// eventQueue is a hand-rolled min-heap ordered by (time, insertion
// sequence). It avoids container/heap's interface dispatch on the hottest
// loop of every simulation and maintains each event's index so cancellation
// can remove in place.
type eventQueue []*event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) push(ev *event) {
	ev.index = len(*q)
	*q = append(*q, ev)
	q.siftUp(ev.index)
}

func (q *eventQueue) popMin() *event {
	h := *q
	ev := h[0]
	n := len(h) - 1
	h.swap(0, n)
	h[n] = nil
	*q = h[:n]
	if n > 0 {
		q.siftDown(0)
	}
	ev.index = -1
	q.maybeShrink()
	return ev
}

// remove deletes the event at heap position i.
func (q *eventQueue) remove(i int) {
	h := *q
	n := len(h) - 1
	ev := h[i]
	if i != n {
		h.swap(i, n)
	}
	h[n] = nil
	*q = h[:n]
	if i != n {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	ev.index = -1
	q.maybeShrink()
}

// shrinkMinCap is the smallest backing-array capacity maybeShrink bothers
// reclaiming. Below it the queue costs nothing worth a copy.
const shrinkMinCap = 1024

// maybeShrink reallocates the backing array when occupancy falls to a
// quarter of capacity or less, returning the memory of drain spikes: a fault
// scenario can balloon the queue into the millions of pending deliveries and
// then idle at a few thousand timers for the rest of the run. The copy
// preserves slot order, so event indices stay valid, and the new capacity
// (2x the live count) keeps the shrink amortized — it cannot re-trigger
// until the queue halves again.
func (q *eventQueue) maybeShrink() {
	h := *q
	if cap(h) < shrinkMinCap || len(h) > cap(h)/4 {
		return
	}
	ns := make(eventQueue, len(h), 2*len(h))
	copy(ns, h)
	*q = ns
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// siftDown reports whether the element moved.
func (q eventQueue) siftDown(i int) bool {
	n := len(q)
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
	return i > start
}
