package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// shardTracer records (time, tag) observations per shard so parallel windows
// never share a slice; merge() produces a canonical ordering for comparison.
type shardTracer struct {
	mu   sync.Mutex
	logs [][]string
}

func newShardTracer(n int) *shardTracer {
	return &shardTracer{logs: make([][]string, n)}
}

func (tr *shardTracer) record(shard int, at time.Duration, tag string) {
	tr.logs[shard] = append(tr.logs[shard], fmt.Sprintf("%v %s", at, tag))
}

func (tr *shardTracer) merged() string {
	var all []string
	for i, l := range tr.logs {
		for j, line := range l {
			// Tag with (shard, position) so the sort is total and stable
			// across runs: per-shard order is the determinism contract.
			all = append(all, fmt.Sprintf("%s [s%d #%04d]", line, i, j))
		}
	}
	sort.Strings(all)
	return strings.Join(all, "\n")
}

// pingPong builds a 2-shard workload where each shard schedules local events
// and bounces cross-shard messages with latency >= lookahead, then returns
// the merged trace.
func pingPong(t *testing.T, parallel bool) string {
	t.Helper()
	const lookahead = 10 * time.Millisecond
	se := NewShardedEngine(7, 2, lookahead)
	se.SetParallel(parallel)
	tr := newShardTracer(2)

	var bounce DeliveryHandler
	bounce = func(from, to uint64, msg any) {
		n := msg.(int)
		dst := int(to)
		eng := se.Shard(dst)
		tr.record(dst, eng.Now(), fmt.Sprintf("recv %d", n))
		if n <= 0 {
			return
		}
		// Reply with a jittered cross-shard latency >= lookahead.
		d := lookahead + time.Duration(eng.Rand("jitter").Intn(5000))*time.Microsecond
		se.SendCross(dst, int(from), eng.Now()+d, bounce, to, from, n-1)
	}

	for s := 0; s < 2; s++ {
		s := s
		eng := se.Shard(s)
		// Local chatter: a periodic timer plus a burst of one-shot events.
		eng.Every(3*time.Millisecond, func() {
			tr.record(s, eng.Now(), "tick")
		})
		for i := 0; i < 4; i++ {
			i := i
			eng.After(time.Duration(i)*7*time.Millisecond, func() {
				tr.record(s, eng.Now(), fmt.Sprintf("local %d", i))
			})
		}
	}
	// Seed two independent ping-pong chains, one starting on each shard.
	se.SendCross(0, 1, lookahead, bounce, 0, 1, 8)
	se.SendCross(1, 0, lookahead+time.Millisecond, bounce, 1, 0, 8)

	se.RunUntil(200 * time.Millisecond)
	return tr.merged()
}

func TestShardedSerialAndParallelWindowsAgree(t *testing.T) {
	serial := pingPong(t, false)
	parallel := pingPong(t, true)
	if serial != parallel {
		t.Fatalf("serial and parallel window execution diverged:\nserial:\n%s\n\nparallel:\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "recv 0") {
		t.Fatalf("ping-pong chain did not complete:\n%s", serial)
	}
}

func TestShardedControlEventsFireAtBarriers(t *testing.T) {
	const lookahead = 10 * time.Millisecond
	se := NewShardedEngine(3, 2, lookahead)
	se.SetParallel(false)

	// A shard event inside the control event's window must run before it:
	// windows are clipped at control timestamps.
	var order []string
	se.Shard(0).After(14*time.Millisecond, func() {
		order = append(order, "shard@14ms")
	})
	se.Control().At(15*time.Millisecond, func() {
		order = append(order, fmt.Sprintf("control@%v", se.Control().Now()))
	})
	se.Shard(1).After(16*time.Millisecond, func() {
		order = append(order, "shard@16ms")
	})
	se.RunUntil(30 * time.Millisecond)

	want := []string{"shard@14ms", "control@15ms", "shard@16ms"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestShardedBarrierHooksSeeQuiescentShards(t *testing.T) {
	const lookahead = 5 * time.Millisecond
	se := NewShardedEngine(11, 2, lookahead)
	se.SetParallel(true)

	var executed int
	se.Shard(0).Every(time.Millisecond, func() { executed++ })
	var samples []int
	se.OnBarrier(func() {
		// Hooks run with all shards joined: reading shard state here must
		// be race-free (the -race CI run covers this path) and clocks must
		// agree with the barrier time.
		if got, want := se.Shard(0).Now(), se.Now(); got != want {
			t.Errorf("shard clock %v != barrier time %v", got, want)
		}
		samples = append(samples, executed)
	})
	se.RunUntil(20 * time.Millisecond)

	if executed != 20 {
		t.Fatalf("periodic ran %d times, want 20", executed)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatalf("barrier samples not monotonic: %v", samples)
		}
	}
}

func TestShardedLookaheadViolationPanics(t *testing.T) {
	const lookahead = 10 * time.Millisecond
	se := NewShardedEngine(5, 2, lookahead)
	se.SetParallel(false) // propagate the panic to RunUntil's caller

	se.Shard(0).After(2*time.Millisecond, func() {
		// A cross-shard message due inside the current window: faster than
		// the declared lookahead, must refuse loudly instead of reordering.
		se.SendCross(0, 1, se.Shard(0).Now()+time.Millisecond,
			func(from, to uint64, msg any) {}, 0, 1, nil)
	})

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sub-lookahead cross-shard send did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("panic does not explain the lookahead violation: %v", r)
		}
	}()
	se.RunUntil(20 * time.Millisecond)
}

func TestShardedIdleHopSkipsEmptyWindows(t *testing.T) {
	const lookahead = time.Millisecond
	se := NewShardedEngine(9, 2, lookahead)
	se.SetParallel(false)

	fired := false
	se.Shard(1).After(10*time.Second, func() { fired = true })
	barriers := 0
	se.OnBarrier(func() { barriers++ })
	se.RunUntil(10 * time.Second)

	if !fired {
		t.Fatal("distant event did not fire")
	}
	// Without the hop this run would take 10M one-millisecond windows.
	if barriers > 10 {
		t.Fatalf("idle run crossed %d barriers, expected a handful", barriers)
	}
}

func TestShardedSeedsAreIndependent(t *testing.T) {
	se := NewShardedEngine(42, 3, time.Millisecond)
	seen := map[int64]bool{se.Control().Seed(): true}
	for i := 0; i < 3; i++ {
		s := se.Shard(i).Seed()
		if seen[s] {
			t.Fatalf("duplicate shard seed %d", s)
		}
		seen[s] = true
	}
	if se.Control().Seed() != 42 {
		t.Fatalf("control seed %d, want root seed 42", se.Control().Seed())
	}
}

func TestEventQueueShrinksAfterDrainSpike(t *testing.T) {
	e := NewEngine(1)
	const spike = 100000
	for i := 0; i < spike; i++ {
		e.After(time.Duration(i)*time.Microsecond, func() {})
	}
	if e.PeakPending() != spike {
		t.Fatalf("peak pending %d, want %d", e.PeakPending(), spike)
	}
	e.Run()
	// Steady state after the drain: a small working set again.
	for i := 0; i < 100; i++ {
		e.After(time.Duration(i)*time.Microsecond, func() {})
	}
	if c := cap(e.queue); c > 4*shrinkMinCap {
		t.Fatalf("queue capacity %d after drain spike, want it shrunk", c)
	}
	if e.PeakPending() != spike {
		t.Fatalf("peak pending %d lost after drain, want %d", e.PeakPending(), spike)
	}
}

func TestAtMsgSchedulesAtAbsoluteTime(t *testing.T) {
	e := NewEngine(1)
	var at []time.Duration
	h := func(from, to uint64, msg any) { at = append(at, e.Now()) }
	e.AtMsg(5*time.Millisecond, h, 0, 1, nil)
	e.AtMsg(2*time.Millisecond, h, 0, 1, nil)
	e.RunUntil(3 * time.Millisecond)
	e.AtMsg(time.Millisecond, h, 0, 1, nil) // past: clamps to now
	e.Run()
	if len(at) != 3 || at[0] != 2*time.Millisecond || at[1] != 3*time.Millisecond || at[2] != 5*time.Millisecond {
		t.Fatalf("AtMsg fire times %v", at)
	}
}
