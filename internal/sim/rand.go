package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Rand is a deterministic random stream. It wraps math/rand with a small set
// of helpers used across the simulator. Each named stream is seeded from the
// engine's root seed and the stream name, so adding a new consumer of
// randomness does not perturb existing streams.
type Rand struct {
	*rand.Rand
}

// Rand returns the engine's random stream with the given name, creating it
// on first use. Streams are stable across calls.
func (e *Engine) Rand(name string) *Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	r := NewRand(StreamSeed(e.seed, name))
	e.streams[name] = r
	return r
}

// NewRand returns a stream seeded with the given value.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// StreamSeed derives a per-stream seed from a root seed and a stream name.
func StreamSeed(root int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return root ^ int64(h.Sum64())
}

// SampleWithout returns k distinct values drawn uniformly from [0, n)
// excluding the values in skip. It panics if fewer than k candidates exist.
// The result order is random.
func (r *Rand) SampleWithout(n, k int, skip map[int]bool) []int {
	candidates := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !skip[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) < k {
		panic("sim: SampleWithout: not enough candidates")
	}
	r.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:k]
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// LogNormal returns exp(N(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}
