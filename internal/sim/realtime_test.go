package sim

import (
	"sync"
	"testing"
	"time"
)

func TestRealSchedulerFiresCallback(t *testing.T) {
	s := NewRealScheduler()
	defer s.Close()
	done := make(chan struct{})
	s.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("callback did not fire")
	}
	if s.Now() <= 0 {
		t.Fatal("Now() should be positive after elapsed time")
	}
}

func TestRealSchedulerStopPreventsFiring(t *testing.T) {
	s := NewRealScheduler()
	defer s.Close()
	var mu sync.Mutex
	fired := false
	tm := s.After(50*time.Millisecond, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
	})
	if !tm.Stop() {
		t.Fatal("Stop should report true before firing")
	}
	time.Sleep(120 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestRealSchedulerCloseCancelsAll(t *testing.T) {
	s := NewRealScheduler()
	var mu sync.Mutex
	count := 0
	for i := 0; i < 5; i++ {
		s.After(50*time.Millisecond, func() {
			mu.Lock()
			count++
			mu.Unlock()
		})
	}
	s.Close()
	time.Sleep(120 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Fatalf("%d callbacks fired after Close, want 0", count)
	}
	// After Close, new timers are inert.
	tm := s.After(time.Millisecond, func() {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if tm.Stop() {
		t.Fatal("inert timer Stop should report false")
	}
}
