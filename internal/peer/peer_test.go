package peer

import (
	"math/rand"
	"testing"
	"time"

	"fabricgossip/internal/crypto"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

type fixture struct {
	engine *sim.Engine
	net    *transport.SimNetwork
	peers  []*Peer
	order  *transport.SimEndpoint
	signer *crypto.Signer
}

func newFixture(t *testing.T, n int, cfg Config) *fixture {
	t.Helper()
	f := &fixture{engine: sim.NewEngine(1)}
	f.net = transport.NewSimNetwork(f.engine, netmodel.Model{PropMin: time.Millisecond, PropMax: time.Millisecond}, nil)
	signer, err := crypto.NewSigner(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	f.signer = signer
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	ecfg, err := enhanced.ConfigFor(max(n, 3), 2, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ep := f.net.AddNode()
		core := gossip.New(gossip.DefaultConfig(ep.ID(), ids), ep, f.engine, f.engine.Rand("g"), enhanced.New(ecfg))
		f.peers = append(f.peers, New(core, nil, f.engine, cfg))
	}
	f.order = f.net.AddNode()
	for _, p := range f.peers {
		p.Gossip().Start()
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (f *fixture) block(num uint64, prev *ledger.Block, txs int, sign bool) *ledger.Block {
	b := &ledger.Block{Num: num}
	for i := 0; i < txs; i++ {
		rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{byte(num), byte(i)}}}}
		b.Txs = append(b.Txs, &ledger.Transaction{
			ID:     ledger.ProposalDigest("c", "cc", rw, []byte{byte(num), byte(i)}),
			Client: "c", Chaincode: "cc", RWSet: rw, Payload: []byte{byte(num), byte(i)},
		})
	}
	b.DataHash = ledger.ComputeDataHash(b.Txs)
	if prev != nil {
		b.PrevHash = prev.Hash()
	}
	if sign {
		b.Sig = f.signer.Sign(b.HeaderBytes())
	}
	return b
}

func TestValidationDelayIsProportionalToTxCount(t *testing.T) {
	f := newFixture(t, 3, Config{ValidationPerTx: 50 * time.Millisecond})
	b := f.block(0, nil, 10, false)
	var committedAt time.Duration
	f.peers[0].OnCommitResult(func(ledger.CommitResult) { committedAt = f.engine.Now() })
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b})
	f.engine.RunUntil(5 * time.Second)
	// 1 ms delivery + 10 * 50 ms validation.
	if committedAt < 500*time.Millisecond || committedAt > 600*time.Millisecond {
		t.Fatalf("committed at %v, want ≈ 501ms", committedAt)
	}
	if f.peers[0].Ledger().Height() != 1 {
		t.Fatal("block not committed")
	}
}

func TestValidationIsSequential(t *testing.T) {
	f := newFixture(t, 3, Config{ValidationPerTx: 100 * time.Millisecond})
	b0 := f.block(0, nil, 2, false)
	b1 := f.block(1, b0, 2, false)
	var times []time.Duration
	f.peers[0].OnCommitResult(func(ledger.CommitResult) { times = append(times, f.engine.Now()) })
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b0})
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b1})
	f.engine.RunUntil(5 * time.Second)
	if len(times) != 2 {
		t.Fatalf("committed %d blocks", len(times))
	}
	// Block 1's 200 ms validation must start only after block 0 commits.
	if gap := times[1] - times[0]; gap < 200*time.Millisecond {
		t.Fatalf("second commit only %v after first; validation overlapped", gap)
	}
}

func TestCommitResultsSurfaceMVCCConflicts(t *testing.T) {
	f := newFixture(t, 3, Config{ValidationPerTx: time.Millisecond})
	// Two txs in one block write the same key from the same base.
	rw := ledger.RWSet{
		Reads:  []ledger.KVRead{{Key: "x"}},
		Writes: []ledger.KVWrite{{Key: "x", Value: []byte{1}}},
	}
	mk := func(client string) *ledger.Transaction {
		return &ledger.Transaction{
			ID:     ledger.ProposalDigest(client, "cc", rw, nil),
			Client: client, Chaincode: "cc", RWSet: rw,
		}
	}
	b := &ledger.Block{Num: 0, Txs: []*ledger.Transaction{mk("c1"), mk("c2")}}
	b.DataHash = ledger.ComputeDataHash(b.Txs)
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b})
	f.engine.RunUntil(time.Second)
	if got := f.peers[0].Conflicts(); got != 1 {
		t.Fatalf("conflicts = %d, want 1 (earliest writer wins)", got)
	}
	results := f.peers[0].Results()
	if len(results) != 1 || results[0].Valid != 1 || results[0].Invalid != 1 {
		t.Fatalf("results = %+v", results)
	}
}

func TestOrdererSignatureEnforcement(t *testing.T) {
	f := newFixture(t, 3, Config{
		ValidationPerTx: time.Millisecond,
		OrdererKey:      f0Key(t),
	})
	// Fixture uses a different signer than f0Key: everything is dropped.
	b := f.block(0, nil, 1, true)
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b})
	f.engine.RunUntil(time.Second)
	if f.peers[0].Ledger().Height() != 0 {
		t.Fatal("forged block committed")
	}
	if f.peers[0].Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", f.peers[0].Dropped())
	}
}

func f0Key(t *testing.T) crypto.PublicKey {
	t.Helper()
	s, err := crypto.NewSigner(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	return s.Public()
}

func TestOrdererSignatureAccepted(t *testing.T) {
	var f *fixture
	f = newFixture(t, 3, Config{ValidationPerTx: time.Millisecond})
	// Rebuild peers with the right orderer key.
	f2 := newFixture(t, 3, Config{
		ValidationPerTx: time.Millisecond,
		OrdererKey:      f.signer.Public(),
	})
	b := f2.block(0, nil, 1, true)
	_ = f2.order.Send(0, &wire.DeliverBlock{Block: b})
	f2.engine.RunUntil(time.Second)
	if f2.peers[0].Ledger().Height() != 1 {
		t.Fatal("validly signed block rejected")
	}
}

// TestCommitErrorsCountCorruptedChain feeds a block whose PrevHash does not
// match the committed chain: the ledger rejects it at commit time, and the
// peer must count the loss instead of dropping the block silently.
func TestCommitErrorsCountCorruptedChain(t *testing.T) {
	f := newFixture(t, 3, Config{ValidationPerTx: time.Millisecond})
	b0 := f.block(0, nil, 1, false)
	// b1 claims to follow a different block 0: hash-chain mismatch.
	b1 := f.block(1, nil, 1, false)
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b0})
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b1})
	f.engine.RunUntil(time.Second)
	if h := f.peers[0].Ledger().Height(); h != 1 {
		t.Fatalf("height = %d, want 1 (corrupted block must not commit)", h)
	}
	st := f.peers[0].Stats()
	if st.CommitErrors != 1 {
		t.Fatalf("CommitErrors = %d, want 1", st.CommitErrors)
	}
	if st.Committed != 1 {
		t.Fatalf("Committed = %d, want 1", st.Committed)
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 (signature path not involved)", st.Dropped)
	}
}

func TestBlocksPropagateToAllPeersAndCommit(t *testing.T) {
	const n = 8
	f := newFixture(t, n, Config{ValidationPerTx: time.Millisecond})
	b0 := f.block(0, nil, 3, false)
	b1 := f.block(1, b0, 3, false)
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b0})
	_ = f.order.Send(0, &wire.DeliverBlock{Block: b1})
	f.engine.RunUntil(10 * time.Second)
	for i, p := range f.peers {
		if p.Ledger().Height() != 2 {
			t.Fatalf("peer %d height = %d, want 2", i, p.Ledger().Height())
		}
	}
}
