// Package peer assembles a full Fabric peer: gossip delivery feeds a
// sequential validation pipeline that checks endorsement policies and MVCC
// read sets, models the measured validation latency (≈50 ms per transaction
// in the paper's deployment, §V-D), and commits blocks to the local ledger.
// Endorsing peers additionally expose the committed state to an Endorser.
package peer

import (
	"sync"
	"time"

	"fabricgossip/internal/crypto"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// Config parameterizes the peer's validation pipeline.
type Config struct {
	// ValidationPerTx is the modelled validation cost per transaction.
	// The paper measured ≈50 ms/tx on its testbed; new blocks are only
	// usable by the peer (including for endorsement) after validation.
	ValidationPerTx time.Duration
	// OrdererKey, when set, verifies every block's ordering-service
	// signature before validation; blocks failing it are dropped.
	OrdererKey crypto.PublicKey
}

// DefaultConfig returns the paper-calibrated validation cost.
func DefaultConfig() Config {
	return Config{ValidationPerTx: 50 * time.Millisecond}
}

// Peer is one validating peer.
type Peer struct {
	cfg   Config
	core  *gossip.Core
	led   *ledger.Ledger
	sched sim.Scheduler

	mu           sync.Mutex
	queue        []*ledger.Block
	busy         bool
	results      []ledger.CommitResult
	onCommit     func(ledger.CommitResult)
	dropped      uint64
	commitErrors uint64
}

// Stats is a snapshot of the peer's validation-pipeline counters.
type Stats struct {
	// Committed is the number of blocks committed to the local ledger.
	Committed uint64
	// CommitErrors counts blocks the ledger rejected at commit time (e.g.
	// a hash-chain mismatch or an out-of-order block number). Each one
	// drops the block and all its transactions.
	CommitErrors uint64
	// Dropped counts blocks that failed orderer-signature verification.
	Dropped uint64
}

// New wires a peer on top of a gossip core. policy validates endorsements
// (nil skips the check). The peer takes over the core's OnCommit hook.
func New(core *gossip.Core, policy ledger.PolicyChecker, sched sim.Scheduler, cfg Config) *Peer {
	p := &Peer{
		cfg:   cfg,
		core:  core,
		led:   ledger.NewLedger(policy),
		sched: sched,
	}
	core.OnCommit(p.enqueue)
	return p
}

// ID returns the peer's node id.
func (p *Peer) ID() wire.NodeID { return p.core.ID() }

// Ledger returns the peer's ledger.
func (p *Peer) Ledger() *ledger.Ledger { return p.led }

// State returns the peer's committed state database (what an endorser
// simulates against).
func (p *Peer) State() *ledger.StateDB { return p.led.State() }

// Gossip returns the underlying gossip core.
func (p *Peer) Gossip() *gossip.Core { return p.core }

// OnCommitResult installs a hook invoked after every block commit with the
// per-transaction validation outcome.
func (p *Peer) OnCommitResult(fn func(ledger.CommitResult)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onCommit = fn
}

// Results returns a copy of all commit results so far.
func (p *Peer) Results() []ledger.CommitResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ledger.CommitResult, len(p.results))
	copy(out, p.results)
	return out
}

// Conflicts returns the total number of invalidated transactions observed.
func (p *Peer) Conflicts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.results {
		n += r.Invalid
	}
	return n
}

// Dropped returns how many blocks failed orderer-signature verification.
func (p *Peer) Dropped() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Stats returns a snapshot of the pipeline counters.
func (p *Peer) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Committed:    uint64(len(p.results)),
		CommitErrors: p.commitErrors,
		Dropped:      p.dropped,
	}
}

// enqueue receives in-order blocks from gossip and drives the sequential
// validation pipeline: each block occupies the validator for
// ValidationPerTx * len(Txs) before committing, and the next block starts
// only after the previous one committed (validation is single-threaded per
// peer, as in Fabric v1.2).
func (p *Peer) enqueue(b *ledger.Block) {
	if len(p.cfg.OrdererKey) > 0 {
		if crypto.Verify(p.cfg.OrdererKey, b.HeaderBytes(), b.Sig) != nil {
			p.mu.Lock()
			p.dropped++
			p.mu.Unlock()
			return
		}
	}
	p.mu.Lock()
	p.queue = append(p.queue, b)
	start := !p.busy
	if start {
		p.busy = true
	}
	p.mu.Unlock()
	if start {
		p.validateNext()
	}
}

func (p *Peer) validateNext() {
	p.mu.Lock()
	if len(p.queue) == 0 {
		p.busy = false
		p.mu.Unlock()
		return
	}
	b := p.queue[0]
	p.queue = p.queue[1:]
	p.mu.Unlock()

	delay := time.Duration(len(b.Txs)) * p.cfg.ValidationPerTx
	p.sched.After(delay, func() {
		res, err := p.led.Commit(b)
		if err != nil {
			// The block (and every transaction in it) is lost to this
			// peer; surface it instead of failing silently.
			p.mu.Lock()
			p.commitErrors++
			p.mu.Unlock()
			p.validateNext()
			return
		}
		p.mu.Lock()
		p.results = append(p.results, res)
		fn := p.onCommit
		p.mu.Unlock()
		if fn != nil {
			fn(res)
		}
		p.validateNext()
	})
}
